#include "apps/distance_oracle.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "graph/bfs_kernel.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nas::apps {

using graph::Vertex;

namespace {

constexpr char kMagic[] = "NAS-ORACLE v1";

/// %.17g round-trips every finite IEEE double exactly.
std::string render_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::uint64_t resolve_capacity(std::uint64_t budget_bytes, Vertex n) {
  if (n == 0) return 0;
  return budget_bytes / (static_cast<std::uint64_t>(n) * sizeof(std::uint32_t));
}

}  // namespace

SpannerDistanceOracle::SpannerDistanceOracle(const graph::Graph& g,
                                             const core::Params& params,
                                             OracleOptions options)
    : SpannerDistanceOracle(core::build_spanner(g, params, {.validate = false}),
                            options) {}

SpannerDistanceOracle::SpannerDistanceOracle(core::SpannerResult result,
                                             OracleOptions options)
    : csr_(graph::Csr::from_graph(result.spanner)),
      params_(std::move(result.params)),
      mult_(params_->stretch_multiplicative()),
      add_(params_->stretch_additive()),
      capacity_(resolve_capacity(options.cache_budget_bytes,
                                 csr_.num_vertices())),
      kernel_(options.bfs_kernel) {}

SpannerDistanceOracle::SpannerDistanceOracle(graph::Graph spanner,
                                             double multiplicative,
                                             double additive,
                                             OracleOptions options,
                                             std::optional<core::Params> params)
    : SpannerDistanceOracle(graph::Csr::from_graph(spanner), multiplicative,
                            additive, options, std::move(params)) {}

SpannerDistanceOracle::SpannerDistanceOracle(graph::Csr spanner,
                                             double multiplicative,
                                             double additive,
                                             OracleOptions options,
                                             std::optional<core::Params> params)
    : csr_(std::move(spanner)),
      params_(std::move(params)),
      mult_(multiplicative),
      add_(additive),
      capacity_(resolve_capacity(options.cache_budget_bytes,
                                 csr_.num_vertices())),
      kernel_(options.bfs_kernel) {}

const graph::Graph& SpannerDistanceOracle::spanner() const {
  if (!materialized_) {
    materialized_ = std::make_shared<const graph::Graph>(csr_.to_graph());
  }
  return *materialized_;
}

void SpannerDistanceOracle::check_vertex(Vertex v) const {
  if (v >= csr_.num_vertices()) {
    throw std::invalid_argument("SpannerDistanceOracle: vertex out of range");
  }
}

void SpannerDistanceOracle::cache_insert(Vertex s,
                                         std::vector<std::uint32_t>&& dist) const {
  if (capacity_ == 0) return;
  cache_[s] = CacheEntry{std::move(dist), clock_};
  while (cache_.size() > capacity_) {
    // Deterministic LRU: oldest logical clock first, ties broken towards the
    // smallest source ID.  A linear scan — the capacity bounds the cost, and
    // cache state stays a pure function of the query history.
    auto victim = cache_.begin();
    for (auto it = std::next(cache_.begin()); it != cache_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used ||
          (it->second.last_used == victim->second.last_used &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    cache_.erase(victim);
    ++evictions_;
  }
}

std::uint32_t SpannerDistanceOracle::query(Vertex u, Vertex v) const {
  check_vertex(u);
  check_vertex(v);
  if (u == v) return 0;
  // Prefer a cached side; otherwise BFS from the smaller endpoint so (u,v)
  // and (v,u) share one pass.
  Vertex s = std::min(u, v);
  if (cache_.count(u) != 0) {
    s = u;
  } else if (cache_.count(v) != 0) {
    s = v;
  }
  const Vertex t = s == u ? v : u;
  ++clock_;
  const auto it = cache_.find(s);
  if (it != cache_.end()) {
    it->second.last_used = clock_;
    return it->second.dist[t];
  }
  scratch_.run(csr_, s, kernel_);
  ++bfs_passes_;
  const auto answer = scratch_.distance(t);
  if (capacity_ > 0) {
    // Materialize the row for the cache only when the budget can hold it —
    // a cache-disabled oracle answers straight from the scratch.
    std::vector<std::uint32_t> dist(csr_.num_vertices());
    scratch_.copy_distances(dist);
    cache_insert(s, std::move(dist));
  }
  return answer;
}

std::vector<std::uint32_t> SpannerDistanceOracle::batch_query(
    std::span<const Query> queries, unsigned threads, BatchStats* stats) const {
  for (const auto& q : queries) {
    check_vertex(q.u);
    check_vertex(q.v);
  }

  // Plan (serial): pick one BFS source per request — a cached endpoint when
  // available, else the smaller ID — and deduplicate the uncached sources in
  // first-appearance order.  Cache state is deterministic, so the plan is
  // a pure function of the query history.
  std::vector<Vertex> source_of(queries.size(), graph::kInvalidVertex);
  std::vector<Vertex> missing;
  std::unordered_map<Vertex, std::size_t> missing_index;
  // Hit sources are *iterated* below (refresh pass), so they live in a
  // first-appearance vector; the unordered set only answers membership.
  std::vector<Vertex> hit_sources;
  std::unordered_set<Vertex> hit_seen;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto [u, v] = queries[i];
    if (u == v) continue;
    Vertex s = std::min(u, v);
    if (cache_.count(u) != 0) {
      s = u;
    } else if (cache_.count(v) != 0) {
      s = v;
    }
    source_of[i] = s;
    if (cache_.count(s) != 0) {
      if (hit_seen.insert(s).second) hit_sources.push_back(s);
    } else if (missing_index.emplace(s, missing.size()).second) {
      missing.push_back(s);
    }
  }

  // BFS the uncached sources, sharded across the pool.  Every worker writes
  // only its own sources' slots and owns one reused BfsScratch, so the
  // filled distance vectors are identical at any thread count and any
  // kernel (distances are level structure; direction cannot move them).
  // The workers stream the shared CSR arrays read-only.
  std::vector<std::vector<std::uint32_t>> fresh(missing.size());
  util::ThreadPool::run_sharded(
      missing.size(), threads, [&](std::size_t begin, std::size_t end) {
        graph::BfsScratch scratch;
        for (std::size_t i = begin; i < end; ++i) {
          fresh[i].resize(csr_.num_vertices());
          graph::bfs_kernel_into(csr_, missing[i], fresh[i], scratch, kernel_);
        }
      });
  bfs_passes_ += missing.size();

  // Answer in request order (serial).
  std::vector<std::uint32_t> answers(queries.size(), 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Vertex s = source_of[i];
    if (s == graph::kInvalidVertex) continue;  // u == v
    const Vertex t = s == queries[i].u ? queries[i].v : queries[i].u;
    const auto hit = cache_.find(s);
    answers[i] = hit != cache_.end() ? hit->second.dist[t]
                                     : fresh[missing_index.at(s)][t];
  }

  // Cache maintenance (serial, deterministic): the whole batch counts as one
  // logical-clock tick; touched entries are refreshed in first-appearance
  // order, the fresh sources are inserted in first-appearance order, and
  // eviction trims to the budget.
  ++clock_;
  for (const Vertex s : hit_sources) cache_.at(s).last_used = clock_;
  const auto evictions_before = evictions_;
  for (std::size_t i = 0; i < missing.size(); ++i) {
    cache_insert(missing[i], std::move(fresh[i]));
  }

  if (stats != nullptr) {
    stats->queries = queries.size();
    stats->distinct_sources = hit_sources.size() + missing.size();
    stats->cache_hits = hit_sources.size();
    stats->bfs_passes = missing.size();
    stats->evictions = evictions_ - evictions_before;
    stats->shards = util::ThreadPool::resolve(threads, missing.size());
  }
  return answers;
}

// --- snapshot ----------------------------------------------------------------

void SpannerDistanceOracle::save(std::ostream& out) const {
  out << kMagic << '\n';
  if (params_.has_value()) {
    // Store the constructor arguments: Params::paper takes the user-facing
    // eps', Params::practical the internal eps.
    const auto& p = *params_;
    out << "params " << (p.is_paper_mode() ? "paper" : "practical") << ' '
        << render_double(p.is_paper_mode() ? p.eps_user() : p.eps_internal())
        << ' ' << p.kappa() << ' ' << render_double(p.rho()) << ' '
        << p.n_estimate() << '\n';
  } else {
    out << "params none\n";
  }
  out << "guarantee " << render_double(mult_) << ' ' << render_double(add_)
      << '\n';
  graph::write_edge_list(csr_, out);
}

void SpannerDistanceOracle::save_file(const std::string& path,
                                      SnapshotFormat format) const {
  if (format == SnapshotFormat::kV2) {
    save_snapshot_v2({csr_, mult_, add_, params_}, path);
    return;
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("oracle snapshot: cannot open " + path +
                             " for writing");
  }
  save(out);
  if (!out) throw std::runtime_error("oracle snapshot: write failed: " + path);
}

SpannerDistanceOracle SpannerDistanceOracle::load(std::istream& in,
                                                  OracleOptions options) {
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error("oracle snapshot: " + what + " at line " +
                             std::to_string(line_no));
  };
  std::string line;
  const auto next_line = [&](const char* expected) {
    ++line_no;
    if (!std::getline(in, line)) {
      fail(std::string("truncated snapshot (expected ") + expected + ")");
    }
  };

  next_line("magic header");
  if (line != kMagic) {
    fail("bad magic \"" + line + "\" (expected \"" + kMagic + "\")");
  }

  next_line("params line");
  std::istringstream params_line(line);
  std::string tag, mode;
  if (!(params_line >> tag >> mode) || tag != "params") {
    fail("malformed params line (expected 'params none|practical|paper ...')");
  }
  bool have_params = false;
  double eps = 0.0, rho = 0.0;
  int kappa = 0;
  std::uint64_t n_estimate = 0;
  std::string trailing;
  if (mode == "none") {
    if (params_line >> trailing) fail("trailing token in params line");
  } else if (mode == "practical" || mode == "paper") {
    if (!(params_line >> eps >> kappa >> rho >> n_estimate)) {
      fail("malformed params line (expected 'params " + mode +
           " <eps> <kappa> <rho> <n_estimate>')");
    }
    if (params_line >> trailing) fail("trailing token in params line");
    have_params = true;
  } else {
    fail("unknown params mode \"" + mode + "\"");
  }

  next_line("guarantee line");
  std::istringstream guarantee_line(line);
  double mult = 0.0, add = 0.0;
  if (!(guarantee_line >> tag >> mult >> add) || tag != "guarantee") {
    fail("malformed guarantee line (expected 'guarantee <mult> <add>')");
  }
  if (guarantee_line >> trailing) fail("trailing token in guarantee line");

  // The edge-list body reports errors with absolute line numbers by carrying
  // the header offset into graph::read_edge_list.
  graph::Graph spanner;
  try {
    spanner = graph::read_edge_list(in, line_no);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("oracle snapshot: ") + e.what());
  }

  std::optional<core::Params> params;
  if (have_params) {
    params = rebuild_snapshot_params(mode, eps, kappa, rho, n_estimate,
                                     spanner.num_vertices(), mult, add,
                                     "line 2");
  }
  return SpannerDistanceOracle(std::move(spanner), mult, add, options,
                               std::move(params));
}

SpannerDistanceOracle SpannerDistanceOracle::load_file(const std::string& path,
                                                       OracleOptions options) {
  if (detect_snapshot_format(path) == SnapshotFormat::kV2) {
    auto contents = load_snapshot_v2(path);
    return SpannerDistanceOracle(std::move(contents.csr),
                                 contents.multiplicative, contents.additive,
                                 options, std::move(contents.params));
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("oracle snapshot: cannot open " + path);
  return load(in, options);
}

std::uint64_t digest_answers(std::span<const std::uint32_t> answers) {
  std::uint64_t h = util::mix64(answers.size());
  for (const auto a : answers) h = util::mix64(h ^ a);
  return h;
}

}  // namespace nas::apps
