#include "apps/distance_oracle.hpp"

#include <stdexcept>
#include <utility>

#include "graph/bfs.hpp"

namespace nas::apps {

using graph::Vertex;

SpannerDistanceOracle::SpannerDistanceOracle(const graph::Graph& g,
                                             const core::Params& params)
    : result_(core::build_spanner(g, params, {.validate = false})) {}

SpannerDistanceOracle::SpannerDistanceOracle(core::SpannerResult result)
    : result_(std::move(result)) {}

const std::vector<std::uint32_t>& SpannerDistanceOracle::distances_from(
    Vertex s) const {
  const auto it = cache_.find(s);
  if (it != cache_.end()) return it->second;
  auto res = graph::bfs(result_.spanner, s);
  return cache_.emplace(s, std::move(res.dist)).first->second;
}

std::uint32_t SpannerDistanceOracle::query(Vertex u, Vertex v) const {
  if (u >= result_.spanner.num_vertices() ||
      v >= result_.spanner.num_vertices()) {
    throw std::invalid_argument("SpannerDistanceOracle: vertex out of range");
  }
  if (u == v) return 0;
  // Prefer a cached side if available.
  if (cache_.count(v) && !cache_.count(u)) std::swap(u, v);
  return distances_from(u)[v];
}

}  // namespace nas::apps
