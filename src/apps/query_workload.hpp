// Deterministic query-workload generation for the distance-oracle serving
// layer.
//
// The ROADMAP north star is serving heavy traffic; real traffic is not
// uniform — a few sources are hot (think landmark pages, popular users), and
// that skew is exactly what a bounded source cache exploits.  Two request
// distributions cover both ends:
//
//   * "uniform": both endpoints drawn uniformly from [0, n).  Worst case for
//     the cache (every source about equally likely).
//   * "zipf":    the source is drawn from a Zipf(theta) distribution over a
//     seed-dependent permutation of the vertices (so the hot set is not just
//     the low IDs); the target stays uniform.  Models heavy-traffic skew —
//     theta around 1 gives the classic "few sources dominate" shape.
//
// Everything is generated with the repo's own Xoshiro256/Fisher-Yates
// primitives — no std::shuffle, no std::discrete_distribution.  The
// "uniform" stream is pure integer arithmetic and produces the same bytes
// on every platform and stdlib; "zipf" additionally goes through std::pow
// when building the CDF, so its stream is deterministic for a fixed libm
// but may differ across libm implementations (which is why the golden-sink
// corpus restricts itself to uniform).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "graph/graph.hpp"

namespace nas::apps {

struct WorkloadSpec {
  std::string dist = "uniform";  ///< "uniform" | "zipf"
  std::uint64_t queries = 1000;  ///< batch size
  std::uint64_t seed = 1;
  double zipf_theta = 0.99;      ///< zipf skew exponent (ignored for uniform)
};

/// Generates `spec.queries` requests over vertices [0, n).  Deterministic in
/// (n, spec); throws std::invalid_argument on an unknown distribution name,
/// n == 0, or a non-positive zipf theta.
[[nodiscard]] std::vector<Query> make_query_workload(graph::Vertex n,
                                                     const WorkloadSpec& spec);

/// Reads "u v" request lines ('#' comments, blank lines allowed), with the
/// graph::read_edge_list line-numbered error contract.  Shared by the
/// serving CLIs (nas_oracle, nas_serve) so both accept the same files.
[[nodiscard]] std::vector<Query> read_query_file(const std::string& path);

/// Writes one "u v d" line per request in request order ("inf" for
/// disconnected pairs).  This is the serving CLIs' answer format; CI's
/// cross-shard/cross-thread cmp gates compare these bytes.
void write_answers(const std::vector<Query>& queries,
                   const std::vector<std::uint32_t>& answers,
                   std::ostream& out);

}  // namespace nas::apps
