#include "apps/synchronizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace nas::apps {

using graph::Graph;
using graph::kInfDist;
using graph::Vertex;

SynchronizerReport analyze_synchronizer(const Graph& g, const Graph& h) {
  if (g.num_vertices() != h.num_vertices()) {
    throw std::invalid_argument("analyze_synchronizer: size mismatch");
  }
  SynchronizerReport rep;
  rep.messages_per_pulse = 2 * h.num_edges();
  rep.baseline_messages_per_pulse = 2 * g.num_edges();

  double stretch_sum = 0.0;
  std::uint64_t stretch_count = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (g.degree(u) == 0) continue;
    const auto dist = graph::bfs(h, u);
    for (Vertex v : g.neighbors(u)) {
      if (v < u) continue;  // each G-edge once
      if (dist.dist[v] == kInfDist) {
        rep.overlay_connects = false;
        continue;
      }
      rep.pulse_latency = std::max(rep.pulse_latency, dist.dist[v]);
      stretch_sum += dist.dist[v];
      ++stretch_count;
    }
  }
  rep.mean_edge_stretch =
      stretch_count == 0 ? 1.0 : stretch_sum / static_cast<double>(stretch_count);
  return rep;
}

}  // namespace nas::apps
