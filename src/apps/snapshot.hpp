// NAS-ORACLE snapshot formats.
//
// Two on-disk encodings of the same serving state (spanner + Params +
// guarantee pair):
//
//   * v1 — the original line-oriented text format ("NAS-ORACLE v1" magic,
//     params line, guarantee line, graph::io edge-list body).  Human-
//     readable, diff-able, and the golden baseline every other encoding is
//     checked against.  The reader/writer live in SpannerDistanceOracle.
//   * v2 — a little-endian binary image holding the CSR arrays verbatim so
//     a serving process can mmap the file and point graph::Csr spans
//     straight into the page cache (zero parse, zero copy).  Layout:
//
//         offset  size  field
//              0     8  magic "NASORC2\0"
//              8     4  u32 version            (2)
//             12     4  u32 header_bytes       (96)
//             16     8  u64 n                  (vertices)
//             24     8  u64 m                  (undirected edges)
//             32     4  u32 params_mode        (0 none, 1 practical, 2 paper)
//             36     4  i32 kappa              | Params constructor args;
//             40     8  f64 eps                 | zero when params_mode
//             48     8  f64 rho                 | is 0
//             56     8  u64 n_estimate         |
//             64     8  f64 guarantee_mult
//             72     8  f64 guarantee_add
//             80     8  u64 checksum           (see snapshot_v2_checksum)
//             88     8  u64 reserved           (0)
//             96  8(n+1)  u64 offsets[n+1]     (CSR offset array)
//      96+8(n+1)    8m  u32 entries[2m]        (CSR adjacency entries)
//
//     The file size must equal 96 + 8(n+1) + 8m exactly.  All integers and
//     doubles are little-endian; offsets begin 8-byte-aligned and entries
//     4-byte-aligned on any page-aligned mapping.  Loading validates the
//     header, the checksum, and the full CSR invariants (offsets
//     nondecreasing from 0 to 2m, neighbors in range, strictly ascending,
//     no self-loops), and reports failures with the absolute byte offset —
//     the binary mirror of v1's line-numbered errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "core/params.hpp"
#include "graph/csr.hpp"

namespace nas::apps {

enum class SnapshotFormat {
  kV1,  ///< "NAS-ORACLE v1" text (edge-list body)
  kV2,  ///< "NASORC2\0" binary (mmap-able CSR image)
};

/// Parses "v1" / "v2"; throws std::invalid_argument otherwise.
[[nodiscard]] SnapshotFormat parse_snapshot_format(const std::string& name);
[[nodiscard]] const char* snapshot_format_name(SnapshotFormat format);

/// Sniffs the on-disk format from the leading bytes: the v2 binary magic
/// selects kV2, anything else (including short files) falls through to kV1,
/// whose reader owns the detailed text-format diagnostics.  Throws
/// std::runtime_error when the file cannot be opened.
[[nodiscard]] SnapshotFormat detect_snapshot_format(const std::string& path);

/// Everything a v2 snapshot stores.  On load the Csr views the file mapping
/// directly (the mapping stays alive through the Csr's keep-alive handle).
struct SnapshotContents {
  graph::Csr csr;
  double multiplicative = 1.0;
  double additive = 0.0;
  std::optional<core::Params> params;
};

/// Writes the v2 binary image.  Throws std::runtime_error on I/O failure.
void save_snapshot_v2(const SnapshotContents& contents,
                      const std::string& path);

/// Maps `path` and validates header, checksum, and CSR invariants.
/// Malformed input raises std::runtime_error prefixed "oracle snapshot
/// (v2):" and naming the offending byte offset.
[[nodiscard]] SnapshotContents load_snapshot_v2(const std::string& path);

/// The v2 integrity checksum: a util::mix64 chain over the whole file image
/// in 8-byte little-endian words (trailing bytes zero-padded) with the
/// checksum field itself treated as zero.  Exposed so tests can craft
/// adversarial snapshots whose *only* defect is the one under test.
[[nodiscard]] std::uint64_t snapshot_v2_checksum(
    std::span<const std::byte> image);

/// Shared by the v1 and v2 loaders: rebuilds core::Params from the stored
/// constructor arguments and applies the guarantee drift guard — the
/// schedule recomputed from the arguments must reproduce the recorded
/// (mult, add) pair within a small relative tolerance (absorbing cross-libm
/// ulp differences; real schedule drift moves the values far more).
/// `mode` is "none" (returns nullopt), "practical", or "paper"; `where`
/// names the source location for error messages (e.g. "line 2").
[[nodiscard]] std::optional<core::Params> rebuild_snapshot_params(
    const std::string& mode, double eps, int kappa, double rho,
    std::uint64_t n_estimate, graph::Vertex n, double mult, double add,
    const std::string& where);

}  // namespace nas::apps
