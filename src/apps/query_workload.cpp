#include "apps/query_workload.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace nas::apps {

using graph::Vertex;

std::vector<Query> make_query_workload(Vertex n, const WorkloadSpec& spec) {
  if (n == 0) {
    throw std::invalid_argument("make_query_workload: n must be positive");
  }
  util::Xoshiro256 rng(spec.seed);
  std::vector<Query> queries;
  queries.reserve(spec.queries);

  if (spec.dist == "uniform") {
    for (std::uint64_t i = 0; i < spec.queries; ++i) {
      queries.push_back({static_cast<Vertex>(rng.below(n)),
                         static_cast<Vertex>(rng.below(n))});
    }
    return queries;
  }

  if (spec.dist == "zipf") {
    if (!(spec.zipf_theta > 0.0)) {
      throw std::invalid_argument(
          "make_query_workload: zipf theta must be positive");
    }
    // Rank r carries weight (r+1)^-theta; sampling inverts the cumulative
    // sum.  The rank->vertex map is a seeded Fisher-Yates permutation so the
    // hot sources are scattered over the ID space instead of clustering at
    // the low IDs every generator family assigns first.
    std::vector<double> cumulative(n);
    double total = 0.0;
    for (Vertex r = 0; r < n; ++r) {
      total += std::pow(static_cast<double>(r) + 1.0, -spec.zipf_theta);
      cumulative[r] = total;
    }
    std::vector<Vertex> rank_to_vertex(n);
    for (Vertex v = 0; v < n; ++v) rank_to_vertex[v] = v;
    for (Vertex i = n - 1; i > 0; --i) {
      const auto j = static_cast<Vertex>(rng.below(i + 1));
      std::swap(rank_to_vertex[i], rank_to_vertex[j]);
    }
    for (std::uint64_t i = 0; i < spec.queries; ++i) {
      const double x = rng.uniform() * total;
      const auto it =
          std::upper_bound(cumulative.begin(), cumulative.end(), x);
      const auto rank = static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(it - cumulative.begin(), n - 1));
      queries.push_back(
          {rank_to_vertex[rank], static_cast<Vertex>(rng.below(n))});
    }
    return queries;
  }

  throw std::invalid_argument("make_query_workload: unknown distribution \"" +
                              spec.dist + "\" (expected uniform|zipf)");
}

std::vector<Query> read_query_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open query file " + path);
  std::vector<Query> queries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r\v\f") == std::string::npos) continue;
    std::istringstream ls(line);
    Query q;
    std::string trailing;
    if (!(ls >> q.u >> q.v) || (ls >> trailing)) {
      throw std::runtime_error(path + ": malformed query line (expected 'u v')"
                               " at line " + std::to_string(line_no));
    }
    queries.push_back(q);
  }
  return queries;
}

void write_answers(const std::vector<Query>& queries,
                   const std::vector<std::uint32_t>& answers,
                   std::ostream& out) {
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out << queries[i].u << ' ' << queries[i].v << ' ';
    if (answers[i] == graph::kInfDist) {
      out << "inf";
    } else {
      out << answers[i];
    }
    out << '\n';
  }
}

}  // namespace nas::apps
