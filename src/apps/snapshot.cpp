#include "apps/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/mapped_file.hpp"
#include "util/rng.hpp"

namespace nas::apps {

using graph::Vertex;

namespace {

constexpr std::array<char, 8> kMagicV2 = {'N', 'A', 'S', 'O', 'R', 'C', '2', '\0'};
constexpr std::uint32_t kVersionV2 = 2;
constexpr std::uint64_t kHeaderBytes = 96;
constexpr std::uint64_t kChecksumSeed = 0x9e3779b97f4a7c15ull;

// Header field byte offsets (see the layout table in snapshot.hpp).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffHeaderBytes = 12;
constexpr std::size_t kOffN = 16;
constexpr std::size_t kOffM = 24;
constexpr std::size_t kOffParamsMode = 32;
constexpr std::size_t kOffKappa = 36;
constexpr std::size_t kOffEps = 40;
constexpr std::size_t kOffRho = 48;
constexpr std::size_t kOffNEstimate = 56;
constexpr std::size_t kOffMult = 64;
constexpr std::size_t kOffAdd = 72;
constexpr std::size_t kOffChecksum = 80;
constexpr std::size_t kOffReserved = 88;

/// %.17g round-trips every finite IEEE double exactly.
std::string render_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string render_hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

template <typename T>
void put(std::byte* base, std::size_t offset, T value) {
  std::memcpy(base + offset, &value, sizeof value);
}

template <typename T>
T get(const std::byte* base, std::size_t offset) {
  T value;
  std::memcpy(&value, base + offset, sizeof value);
  return value;
}

/// Folds `size` bytes into the checksum chain as 8-byte words; a trailing
/// partial word is zero-padded.  The v2 sections (96-byte header, 8(n+1)
/// offset bytes, 8m entry bytes) are all multiples of 8, so folding them
/// one after another equals folding the concatenated image.
std::uint64_t fold_words(std::uint64_t h, const std::byte* data,
                         std::size_t size) {
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, data + i, 8);
    h = util::mix64(h ^ word);
  }
  if (i < size) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, size - i);
    h = util::mix64(h ^ word);
  }
  return h;
}

[[noreturn]] void fail_v2(const std::string& what, std::uint64_t offset) {
  throw std::runtime_error("oracle snapshot (v2): " + what + " at offset " +
                           std::to_string(offset));
}

}  // namespace

SnapshotFormat parse_snapshot_format(const std::string& name) {
  if (name == "v1") return SnapshotFormat::kV1;
  if (name == "v2") return SnapshotFormat::kV2;
  throw std::invalid_argument("unknown snapshot format \"" + name +
                              "\" (expected v1 or v2)");
}

const char* snapshot_format_name(SnapshotFormat format) {
  return format == SnapshotFormat::kV1 ? "v1" : "v2";
}

SnapshotFormat detect_snapshot_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("oracle snapshot: cannot open " + path);
  std::array<char, 8> head{};
  in.read(head.data(), head.size());
  if (in.gcount() == static_cast<std::streamsize>(head.size()) &&
      std::memcmp(head.data(), kMagicV2.data(), head.size()) == 0) {
    return SnapshotFormat::kV2;
  }
  return SnapshotFormat::kV1;
}

std::uint64_t snapshot_v2_checksum(std::span<const std::byte> image) {
  // Fold a copy of the header with the checksum field zeroed, then the
  // payload verbatim.
  std::array<std::byte, kHeaderBytes> header{};
  const std::size_t head = std::min<std::size_t>(image.size(), kHeaderBytes);
  if (head != 0) std::memcpy(header.data(), image.data(), head);
  if (head > kOffChecksum) {
    const std::size_t zeroed = std::min<std::size_t>(head - kOffChecksum, 8);
    std::memset(header.data() + kOffChecksum, 0, zeroed);
  }
  std::uint64_t h = fold_words(kChecksumSeed, header.data(), head);
  return fold_words(h, image.data() + head, image.size() - head);
}

void save_snapshot_v2(const SnapshotContents& contents,
                      const std::string& path) {
  const graph::Csr& csr = contents.csr;
  const std::uint64_t n = csr.num_vertices();
  const std::uint64_t m = csr.num_edges();

  // A default-constructed Csr has an empty offset span; the file always
  // stores n+1 offsets, so substitute the canonical single zero.
  static constexpr std::uint64_t kZeroOffset = 0;
  std::span<const std::uint64_t> offsets = csr.offsets();
  if (offsets.empty()) offsets = std::span<const std::uint64_t>(&kZeroOffset, 1);
  const std::span<const Vertex> entries = csr.entries();

  std::array<std::byte, kHeaderBytes> header{};
  std::memcpy(header.data() + kOffMagic, kMagicV2.data(), kMagicV2.size());
  put(header.data(), kOffVersion, kVersionV2);
  put(header.data(), kOffHeaderBytes, static_cast<std::uint32_t>(kHeaderBytes));
  put(header.data(), kOffN, n);
  put(header.data(), kOffM, m);
  std::uint32_t mode = 0;
  if (contents.params.has_value()) {
    const auto& p = *contents.params;
    mode = p.is_paper_mode() ? 2u : 1u;
    // Store the constructor arguments: Params::paper takes the user-facing
    // eps', Params::practical the internal eps (same contract as v1).
    put(header.data(), kOffKappa, static_cast<std::int32_t>(p.kappa()));
    put(header.data(), kOffEps,
        p.is_paper_mode() ? p.eps_user() : p.eps_internal());
    put(header.data(), kOffRho, p.rho());
    put(header.data(), kOffNEstimate, p.n_estimate());
  }
  put(header.data(), kOffParamsMode, mode);
  put(header.data(), kOffMult, contents.multiplicative);
  put(header.data(), kOffAdd, contents.additive);
  put(header.data(), kOffReserved, std::uint64_t{0});

  // Checksum the header (its checksum field is still zero) and both array
  // sections; every section size is a multiple of 8 so the streamed fold
  // matches snapshot_v2_checksum over the final image.
  std::uint64_t checksum = fold_words(kChecksumSeed, header.data(), kHeaderBytes);
  checksum = fold_words(checksum,
                        reinterpret_cast<const std::byte*>(offsets.data()),
                        offsets.size_bytes());
  checksum = fold_words(checksum,
                        reinterpret_cast<const std::byte*>(entries.data()),
                        entries.size_bytes());
  put(header.data(), kOffChecksum, checksum);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("oracle snapshot: cannot open " + path +
                             " for writing");
  }
  out.write(reinterpret_cast<const char*>(header.data()), header.size());
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size_bytes()));
  out.write(reinterpret_cast<const char*>(entries.data()),
            static_cast<std::streamsize>(entries.size_bytes()));
  if (!out) throw std::runtime_error("oracle snapshot: write failed: " + path);
}

SnapshotContents load_snapshot_v2(const std::string& path) {
  const auto file = util::MappedFile::map(path);
  const std::byte* base = file->data();
  const std::uint64_t size = file->size();

  if (size < kHeaderBytes) {
    fail_v2("truncated header (file holds " + std::to_string(size) + " of " +
                std::to_string(kHeaderBytes) + " bytes)",
            size);
  }
  if (std::memcmp(base + kOffMagic, kMagicV2.data(), kMagicV2.size()) != 0) {
    fail_v2("bad magic (not a NAS-ORACLE v2 binary snapshot)", kOffMagic);
  }
  const auto version = get<std::uint32_t>(base, kOffVersion);
  if (version != kVersionV2) {
    if (__builtin_bswap32(version) == kVersionV2) {
      fail_v2("byte-swapped version field (snapshot written on a big-endian "
              "machine; the format is little-endian)",
              kOffVersion);
    }
    fail_v2("unsupported version " + std::to_string(version) + " (expected " +
                std::to_string(kVersionV2) + ")",
            kOffVersion);
  }
  const auto header_bytes = get<std::uint32_t>(base, kOffHeaderBytes);
  if (header_bytes != kHeaderBytes) {
    fail_v2("unexpected header size " + std::to_string(header_bytes) +
                " (expected " + std::to_string(kHeaderBytes) + ")",
            kOffHeaderBytes);
  }
  const auto n = get<std::uint64_t>(base, kOffN);
  if (n >= graph::kInvalidVertex) {
    fail_v2("vertex count " + std::to_string(n) +
                " exceeds the 32-bit ID universe",
            kOffN);
  }
  const auto m = get<std::uint64_t>(base, kOffM);
  if (m > (std::uint64_t{1} << 58)) {
    fail_v2("implausible edge count " + std::to_string(m), kOffM);
  }
  const std::uint64_t expected = kHeaderBytes + 8 * (n + 1) + 8 * m;
  if (size != expected) {
    fail_v2("size mismatch (file is " + std::to_string(size) +
                " bytes, but n=" + std::to_string(n) + " m=" +
                std::to_string(m) + " needs " + std::to_string(expected) + ")",
            std::min(size, expected));
  }

  const auto stored_checksum = get<std::uint64_t>(base, kOffChecksum);
  const auto computed_checksum = snapshot_v2_checksum({base, size});
  if (stored_checksum != computed_checksum) {
    fail_v2("checksum mismatch (stored " + render_hex(stored_checksum) +
                ", computed " + render_hex(computed_checksum) +
                "); snapshot is corrupt",
            kOffChecksum);
  }

  const auto params_mode = get<std::uint32_t>(base, kOffParamsMode);
  if (params_mode > 2) {
    fail_v2("unknown params mode " + std::to_string(params_mode), kOffParamsMode);
  }

  // CSR invariants.  The header is 96 bytes and mappings are page-aligned
  // (or max_align_t-aligned in the read fallback), so the offset array is
  // 8-byte-aligned and the entry array 4-byte-aligned in place.
  const auto* offsets = reinterpret_cast<const std::uint64_t*>(base + kHeaderBytes);
  const std::uint64_t entries_base = kHeaderBytes + 8 * (n + 1);
  const auto* entries = reinterpret_cast<const Vertex*>(base + entries_base);
  const std::uint64_t entry_count = 2 * m;
  if (offsets[0] != 0) {
    fail_v2("offset array must start at 0 (found " +
                std::to_string(offsets[0]) + ")",
            kHeaderBytes);
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      fail_v2("offset array not nondecreasing at vertex " + std::to_string(v + 1),
              kHeaderBytes + 8 * (v + 1));
    }
  }
  if (offsets[n] != entry_count) {
    fail_v2("offset array ends at " + std::to_string(offsets[n]) +
                " but the entry section holds " + std::to_string(entry_count),
            kHeaderBytes + 8 * n);
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const std::uint64_t at = entries_base + 4 * i;
      if (entries[i] >= n) {
        fail_v2("neighbor " + std::to_string(entries[i]) +
                    " out of range for n=" + std::to_string(n),
                at);
      }
      if (entries[i] == v) {
        fail_v2("self-loop at vertex " + std::to_string(v), at);
      }
      if (i > offsets[v] && entries[i] <= entries[i - 1]) {
        fail_v2("adjacency list of vertex " + std::to_string(v) +
                    " not strictly ascending",
                at);
      }
    }
  }

  SnapshotContents contents;
  contents.multiplicative = get<double>(base, kOffMult);
  contents.additive = get<double>(base, kOffAdd);
  const char* mode_name =
      params_mode == 0 ? "none" : (params_mode == 1 ? "practical" : "paper");
  contents.params = rebuild_snapshot_params(
      mode_name, get<double>(base, kOffEps),
      static_cast<int>(get<std::int32_t>(base, kOffKappa)),
      get<double>(base, kOffRho), get<std::uint64_t>(base, kOffNEstimate),
      static_cast<Vertex>(n), contents.multiplicative, contents.additive,
      "offset " + std::to_string(kOffParamsMode));
  contents.csr = graph::Csr::view(
      std::span<const std::uint64_t>(offsets, n + 1),
      std::span<const Vertex>(entries, entry_count), file);
  return contents;
}

std::optional<core::Params> rebuild_snapshot_params(
    const std::string& mode, double eps, int kappa, double rho,
    std::uint64_t n_estimate, Vertex n, double mult, double add,
    const std::string& where) {
  if (mode == "none") return std::nullopt;
  std::optional<core::Params> params;
  // Syntactically valid but semantically out-of-range arguments (kappa < 2,
  // rho outside [1/kappa, 1/2), ...) throw from the Params factories; keep
  // the snapshot error contract by naming where they came from.
  try {
    params = mode == "paper"
                 ? core::Params::paper(n, eps, kappa, rho, n_estimate)
                 : core::Params::practical(n, eps, kappa, rho, n_estimate);
  } catch (const std::exception& e) {
    throw std::runtime_error("oracle snapshot: invalid params at " + where +
                             ": " + e.what());
  }
  // Drift guard: the schedule recomputed from the stored arguments must
  // reproduce the recorded guarantee.  The comparison is relative, not
  // bit-exact: Params goes through std::pow, and libm results may differ
  // by an ulp between the saving and the loading machine — the recorded
  // pair stays authoritative for serving either way.  Real schedule drift
  // moves these values by far more than the tolerance.
  const auto differs = [](double recomputed, double recorded) {
    return std::abs(recomputed - recorded) >
           1e-9 * std::max(1.0, std::abs(recorded));
  };
  if (differs(params->stretch_multiplicative(), mult) ||
      differs(params->stretch_additive(), add)) {
    throw std::runtime_error(
        "oracle snapshot: recomputed guarantee (" +
        render_double(params->stretch_multiplicative()) + ", " +
        render_double(params->stretch_additive()) +
        ") disagrees with the recorded pair (" + render_double(mult) + ", " +
        render_double(add) + ")");
  }
  return params;
}

}  // namespace nas::apps
