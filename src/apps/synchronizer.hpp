// Synchronizer overhead analysis over a spanner overlay.
//
// Spanners were introduced for exactly this ([Awe85], [PU87] in the paper's
// introduction): a synchronizer lets an asynchronous network run a
// synchronous algorithm by exchanging "pulse" safety messages.  Running the
// synchronizer over a subgraph H instead of all of E trades message
// overhead (∝ |H| per pulse) against pulse latency: two G-neighbors must
// hear about each other's pulses through H, so each simulated round costs
// up to max_{(u,v)∈E} d_H(u,v) time — the *edge stretch* of H.
//
// `analyze_synchronizer` measures both sides of that trade for a given
// overlay, the quantities a synchronizer designer reads off a spanner.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace nas::apps {

struct SynchronizerReport {
  /// Messages per simulated pulse: 2|H| (one safety message per overlay
  /// edge direction).
  std::uint64_t messages_per_pulse = 0;
  /// Same for running directly on G: 2|E|.
  std::uint64_t baseline_messages_per_pulse = 0;
  /// Pulse latency: max over G-edges (u,v) of d_H(u,v); kInfDist-free iff
  /// `overlay_connects` (H spans every G-edge's endpoints).
  std::uint32_t pulse_latency = 0;
  double mean_edge_stretch = 1.0;
  bool overlay_connects = true;

  [[nodiscard]] double message_saving() const {
    return baseline_messages_per_pulse == 0
               ? 1.0
               : static_cast<double>(messages_per_pulse) /
                     static_cast<double>(baseline_messages_per_pulse);
  }
};

/// Measures the overlay-synchronizer trade for overlay `h` of graph `g`.
/// O(n·(|H|+n)) time (one BFS over H per vertex).
[[nodiscard]] SynchronizerReport analyze_synchronizer(const graph::Graph& g,
                                                      const graph::Graph& h);

}  // namespace nas::apps
